package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pretium/internal/graph"
	"pretium/internal/pricing"
	"pretium/internal/sim"
	"pretium/internal/stats"
	"pretium/internal/traffic"
)

// newFlatPriceState builds a pricing state with unit base prices and the
// short-term premium disabled, for clean menu illustrations.
func newFlatPriceState(net *graph.Network, horizon int) *pricing.State {
	st := pricing.NewState(net, horizon, 1)
	st.Adjust = pricing.AdjustConfig{Threshold: 1, Factor: 1}
	return st
}

// quote returns the full-demand menu for a request.
func quote(st *pricing.State, req *traffic.Request) *pricing.Menu {
	return pricing.QuoteMenu(st, req, req.Demand)
}

// newRand returns a seeded generator for figure-local sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Row is one printed line of an experiment's output: a label plus named
// numeric columns in a stable order.
type Row struct {
	Label   string
	Columns []Col
}

// Col is one named value in a Row.
type Col struct {
	Name  string
	Value float64
}

// Fmt renders the row for terminal output.
func (r Row) Fmt() string {
	s := fmt.Sprintf("%-18s", r.Label)
	for _, c := range r.Columns {
		s += fmt.Sprintf("  %s=%.4g", c.Name, c.Value)
	}
	return s
}

// Figure1 reproduces the CDF of per-link 90th/10th-percentile utilization
// ratios over a week of synthetic traffic. Paper shape: ratio > 5 for
// more than 10% of links, < 2 for roughly 70%.
func Figure1(sc Scale, seed int64) []Row {
	// Figure 1 is a *trace* statistic, independent of the scheduling
	// experiments' LP scale; it always uses the calibrated 12-node
	// topology the generator's defaults were tuned on.
	wc := graph.DefaultWANConfig()
	wc.Seed = seed
	net := graph.GenerateWAN(wc)
	gc := traffic.DefaultGenConfig(7 * sc.StepsPerDay)
	gc.StepsPerDay = sc.StepsPerDay
	gc.Seed = seed + 1
	series := traffic.Generate(net, gc)
	usage := traffic.LinkUtilization(net, series)
	var ratios []float64
	for _, s := range usage {
		p90, err1 := stats.Percentile(s, 90)
		p10, err2 := stats.Percentile(s, 10)
		if err1 != nil || err2 != nil || p10 <= 0 {
			continue
		}
		ratios = append(ratios, p90/p10)
	}
	cdf := stats.NewCDF(ratios)
	rows := make([]Row, 0, 16)
	for _, x := range []float64{1, 1.5, 2, 3, 5, 10, 20, 50, 100} {
		rows = append(rows, Row{
			Label:   fmt.Sprintf("ratio<=%.4g", x),
			Columns: []Col{{Name: "cum_frac", Value: cdf.At(x)}},
		})
	}
	return rows
}

// Figure4 reproduces the price-menu comparison: the same request quoted
// with a long and a short deadline. Shorter deadlines yield (weakly)
// higher prices and a smaller guarantee cap x̄.
func Figure4() []Row {
	net := graph.New()
	s := net.AddNode("S", "r")
	m := net.AddNode("M", "r")
	t := net.AddNode("T", "r")
	net.AddEdge(s, t, 1)
	net.AddEdge(s, m, 1)
	net.AddEdge(m, t, 1)
	routes := net.KShortestPaths(s, t, 2)

	st := newFlatPriceState(net, 2)
	long := &traffic.Request{ID: 0, Src: s, Dst: t, Routes: routes, Start: 0, End: 1, Demand: 8, Value: 100}
	short := &traffic.Request{ID: 1, Src: s, Dst: t, Routes: routes, Start: 0, End: 0, Demand: 8, Value: 100}

	menuLong := quote(st, long)
	menuShort := quote(st, short)
	var rows []Row
	for _, x := range []float64{1, 2, 3, 4} {
		rows = append(rows, Row{
			Label: fmt.Sprintf("x=%.0f", x),
			Columns: []Col{
				{Name: "price_long_deadline", Value: menuLong.Price(x)},
				{Name: "price_short_deadline", Value: menuShort.Price(x)},
			},
		})
	}
	rows = append(rows, Row{
		Label: "guarantee_cap",
		Columns: []Col{
			{Name: "xbar_long", Value: menuLong.Cap()},
			{Name: "xbar_short", Value: menuShort.Cap()},
		},
	})
	return rows
}

// Figure5 reproduces the z_e vs y_e correlation: for the synthetic trace
// and for normal/exponential/pareto per-link loads, the top-10% mean
// tracks the 95th percentile linearly.
func Figure5(sc Scale, seed int64) []Row {
	var rows []Row
	add := func(name string, zs, ys []float64) {
		lr, err := stats.LinearRegression(ys, zs)
		if err != nil {
			return
		}
		rows = append(rows, Row{Label: name, Columns: []Col{
			{Name: "slope", Value: lr.Slope},
			{Name: "intercept", Value: lr.Intercept},
			{Name: "R2", Value: lr.R2},
			{Name: "links", Value: float64(len(zs))},
		}})
	}

	// Trace-driven: per-link usage from the synthetic WAN.
	wc := graph.DefaultWANConfig()
	wc.Regions, wc.NodesPerRegion, wc.Seed = sc.Regions, sc.NodesPerRegion, seed
	net := graph.GenerateWAN(wc)
	gc := traffic.DefaultGenConfig(7 * sc.StepsPerDay)
	gc.StepsPerDay = sc.StepsPerDay
	gc.Seed = seed + 1
	usage := traffic.LinkUtilization(net, traffic.Generate(net, gc))
	var zs, ys []float64
	k := 0
	for _, s := range usage {
		if stats.Mean(s) == 0 {
			continue
		}
		if k = len(s) / 10; k < 1 {
			k = 1
		}
		z, err := stats.TopKMean(s, k)
		if err != nil {
			continue
		}
		y, err := stats.Percentile(s, 95)
		if err != nil {
			continue
		}
		zs = append(zs, z)
		ys = append(ys, y)
	}
	add("trace", zs, ys)

	// Synthetic distributions, one "link" per sample with its own scale.
	r := newRand(seed + 7)
	for _, d := range []struct {
		name string
		dist stats.Dist
	}{
		{"normal", stats.Normal{Mu: 10, Sigma: 3, Floor: 0}},
		{"exponential", stats.Exponential{MeanVal: 10}},
		{"pareto", stats.Pareto{Xm: 5, Alpha: 2.5}},
	} {
		var z2, y2 []float64
		for link := 0; link < 150; link++ {
			scale := math.Exp(r.NormFloat64())
			xs := make([]float64, 100)
			for i := range xs {
				xs[i] = scale * d.dist.Sample(r)
			}
			z, _ := stats.TopKMean(xs, 10)
			y, _ := stats.Percentile(xs, 95)
			z2 = append(z2, z)
			y2 = append(y2, y)
		}
		add(d.name, z2, y2)
	}
	return rows
}

// LoadSweepResult carries one (load factor, scheme) cell of Figures 6-9.
type LoadSweepResult struct {
	Load    float64
	Results map[string]SchemeResult
}

// LoadSweep runs every scheme across load factors; Figures 6, 8 and 9 are
// different projections of its output. The (load, scheme) cells run
// concurrently on up to Workers goroutines; every cell constructs its own
// Setup from (sc, load, seed), so cells share nothing and the output is
// identical to a sequential run regardless of scheduling.
func LoadSweep(sc Scale, loads []float64, schemes []string, seed int64) ([]LoadSweepResult, error) {
	results := make([]SchemeResult, len(loads)*len(schemes))
	err := ParallelFor(len(results), func(i int) error {
		load, scheme := loads[i/len(schemes)], schemes[i%len(schemes)]
		s := NewSetup(sc, WithLoad(load), WithSeed(seed))
		r, err := s.RunScheme(scheme)
		if err != nil {
			return fmt.Errorf("load %v: %s: %w", load, scheme, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]LoadSweepResult, len(loads))
	for li, load := range loads {
		res := make(map[string]SchemeResult, len(schemes))
		for si, scheme := range schemes {
			res[scheme] = results[li*len(schemes)+si]
		}
		out[li] = LoadSweepResult{Load: load, Results: res}
	}
	return out, nil
}

// Figure6 projects a load sweep onto welfare relative to OPT.
func Figure6(sweep []LoadSweepResult) []Row {
	var rows []Row
	for _, cell := range sweep {
		opt := cell.Results[SchemeOPT].Report.Welfare
		cols := []Col{}
		for _, name := range schemeOrder(cell.Results) {
			if name == SchemeOPT {
				continue
			}
			rel := 0.0
			if opt != 0 {
				rel = cell.Results[name].Report.Welfare / opt
			}
			cols = append(cols, Col{Name: name, Value: rel})
		}
		rows = append(rows, Row{Label: fmt.Sprintf("load=%.2g", cell.Load), Columns: cols})
	}
	return rows
}

// Figure8 projects a load sweep onto profit relative to RegionOracle.
func Figure8(sweep []LoadSweepResult) []Row {
	var rows []Row
	for _, cell := range sweep {
		ro := cell.Results[SchemeRegionOracle].Report.Profit
		cols := []Col{}
		for _, name := range schemeOrder(cell.Results) {
			if name == SchemeOPT || name == SchemeNoPrices {
				continue // unpriced schemes have no meaningful profit
			}
			rel := cell.Results[name].Report.Profit
			if ro != 0 {
				rel = rel / math.Abs(ro)
			}
			cols = append(cols, Col{Name: name, Value: rel})
		}
		rows = append(rows, Row{Label: fmt.Sprintf("load=%.2g", cell.Load), Columns: cols})
	}
	return rows
}

// Figure9 projects a load sweep onto request completion fractions. For
// Pretium it adds the completion rate *among admitted requests*: overall
// completion penalizes Pretium for refusing transfers whose value does
// not cover their cost (admission control working as designed), whereas
// admitted requests carry guarantees and should essentially always
// finish.
func Figure9(sweep []LoadSweepResult) []Row {
	var rows []Row
	for _, cell := range sweep {
		cols := []Col{}
		for _, name := range schemeOrder(cell.Results) {
			r := cell.Results[name]
			cols = append(cols, Col{Name: name, Value: r.Report.CompletionFrac})
			if r.Controller == nil {
				continue
			}
			admitted, completed := 0, 0
			for i, ok := range r.Controller.Admitted {
				if !ok {
					continue
				}
				admitted++
				// Completion among admitted = delivered what was bought
				// (x_i), which can be below the stated demand when the
				// quote capped the guarantee.
				if r.Outcome.Reneged[i] <= 1e-6 && r.Outcome.Delivered[i] > 0 {
					completed++
				}
			}
			if admitted > 0 {
				cols = append(cols, Col{
					Name:  name + "(admitted)",
					Value: float64(completed) / float64(admitted),
				})
			}
		}
		rows = append(rows, Row{Label: fmt.Sprintf("load=%.2g", cell.Load), Columns: cols})
	}
	return rows
}

// Figure7 runs Pretium at the paper's load factor 2 and reports the three
// panels: (a) price vs utilization over time on the busiest priced link,
// (b) value achieved relative to OPT binned by value-per-byte, and (c)
// admission price vs request value.
func Figure7(sc Scale, seed int64) (a, b, c []Row, err error) {
	s := NewSetup(sc, WithLoad(2), WithSeed(seed))
	pret, err := s.RunPretium(nil)
	if err != nil {
		return nil, nil, nil, err
	}
	opt, err := s.RunScheme(SchemeOPT)
	if err != nil {
		return nil, nil, nil, err
	}

	// (a) the usage-priced link with the highest total usage.
	bestE, bestSum := -1, -1.0
	for _, e := range s.Net.UsagePricedEdges() {
		sum := 0.0
		for _, u := range pret.Outcome.Usage[e] {
			sum += u
		}
		if sum > bestSum {
			bestSum, bestE = sum, int(e)
		}
	}
	if bestE >= 0 {
		capTotal := s.Net.Edge(graph.EdgeID(bestE)).Capacity
		for t := 0; t < sc.Steps; t++ {
			a = append(a, Row{Label: fmt.Sprintf("t=%d", t), Columns: []Col{
				{Name: "price", Value: pret.Controller.PriceTrace[bestE][t]},
				{Name: "utilization", Value: pret.Outcome.Usage[bestE][t] / capTotal},
			}})
		}
	}

	// (b) value achieved per value-per-byte bucket, relative to OPT.
	maxV := 0.0
	for _, r := range s.Requests {
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	nbins := 6
	pretH := stats.NewHistogram(0, maxV+1e-9, nbins)
	optH := stats.NewHistogram(0, maxV+1e-9, nbins)
	for i, r := range s.Requests {
		pretH.Add(r.Value, r.Value*pret.Outcome.Delivered[i])
		optH.Add(r.Value, r.Value*opt.Outcome.Delivered[i])
	}
	for i := 0; i < nbins; i++ {
		rel := 0.0
		if optH.Sums[i] > 0 {
			rel = pretH.Sums[i] / optH.Sums[i]
		}
		b = append(b, Row{Label: fmt.Sprintf("value~%.2f", pretH.BinCenter(i)), Columns: []Col{
			{Name: "value_rel_OPT", Value: rel},
			{Name: "OPT_value", Value: optH.Sums[i]},
		}})
	}

	// (c) admission price vs value for admitted requests (sampled).
	type pv struct{ v, p float64 }
	var pts []pv
	for i, r := range s.Requests {
		if pret.Controller.Admitted[i] {
			pts = append(pts, pv{v: r.Value, p: pret.Controller.AdmissionPrice[i]})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })
	step := len(pts)/40 + 1
	for i := 0; i < len(pts); i += step {
		c = append(c, Row{Label: fmt.Sprintf("v=%.3f", pts[i].v), Columns: []Col{
			{Name: "price", Value: pts[i].p},
		}})
	}
	return a, b, c, nil
}

// Figure10 compares the CDF of per-link 90th-percentile utilization
// across schemes at load 1 (Pretium's schedule adjustment flattens peaks).
func Figure10(sc Scale, schemes []string, seed int64) ([]Row, error) {
	s := NewSetup(sc, WithLoad(1), WithSeed(seed))
	res, err := s.RunSchemes(schemes...)
	if err != nil {
		return nil, err
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	var rows []Row
	for _, q := range quantiles {
		cols := []Col{}
		for _, name := range schemeOrder(res) {
			cdf := sim.Utilization90thCDF(s.Net, res[name].Outcome.Usage)
			cols = append(cols, Col{Name: name, Value: cdf.Quantile(q)})
		}
		rows = append(rows, Row{Label: fmt.Sprintf("q=%.2f", q), Columns: cols})
	}
	return rows, nil
}

// Figure11 is the ablation study: full Pretium vs Pretium-NoMenu vs
// Pretium-NoSAM, welfare relative to OPT across load factors.
func Figure11(sc Scale, loads []float64, seed int64) ([]Row, error) {
	rows := make([]Row, len(loads))
	err := ParallelFor(len(loads), func(i int) error {
		load := loads[i]
		s := NewSetup(sc, WithLoad(load), WithSeed(seed))
		res, err := s.RunSchemes(SchemeOPT, SchemePretium, SchemeNoMenu, SchemeNoSAM)
		if err != nil {
			return err
		}
		opt := res[SchemeOPT].Report.Welfare
		cols := []Col{}
		for _, name := range []string{SchemePretium, SchemeNoMenu, SchemeNoSAM} {
			rel := 0.0
			if opt != 0 {
				rel = res[name].Report.Welfare / opt
			}
			cols = append(cols, Col{Name: name, Value: rel})
		}
		rows[i] = Row{Label: fmt.Sprintf("load=%.2g", load), Columns: cols}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure12 sweeps the mean link cost (x2 and beyond) at load 1 and
// reports welfare relative to OPT for Pretium and RegionOracle.
func Figure12(sc Scale, costScales []float64, seed int64) ([]Row, error) {
	rows := make([]Row, len(costScales))
	err := ParallelFor(len(costScales), func(i int) error {
		cs := costScales[i]
		s := NewSetup(sc, WithLoad(1), WithCostScale(cs), WithSeed(seed))
		res, err := s.RunSchemes(SchemeOPT, SchemePretium, SchemeRegionOracle)
		if err != nil {
			return err
		}
		opt := res[SchemeOPT].Report.Welfare
		rel := func(n string) float64 {
			if opt == 0 {
				return 0
			}
			return res[n].Report.Welfare / opt
		}
		rows[i] = Row{Label: fmt.Sprintf("costx%.2g", cs), Columns: []Col{
			{Name: SchemePretium, Value: rel(SchemePretium)},
			{Name: SchemeRegionOracle, Value: rel(SchemeRegionOracle)},
		}}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ValueDistCase is one point of the Figures 13-14 sweep.
type ValueDistCase struct {
	Name string
	Dist stats.Dist
}

// ValueDistCases returns the paper's sweep: normal and pareto values at
// several mean/stddev ratios.
func ValueDistCases() []ValueDistCase {
	mean := 0.35
	var cases []ValueDistCase
	for _, ratio := range []float64{1.5, 2.5, 4} {
		sd := mean / ratio
		cases = append(cases,
			ValueDistCase{
				Name: fmt.Sprintf("normal(m/s=%.2g)", ratio),
				Dist: stats.Normal{Mu: mean, Sigma: sd, Floor: 0.02},
			},
			ValueDistCase{
				Name: fmt.Sprintf("pareto(m/s=%.2g)", ratio),
				Dist: stats.ParetoWithMeanStd(mean, sd),
			},
		)
	}
	return cases
}

// Figure13and14 sweeps value distributions at load 1: welfare relative to
// OPT (Figure 13) and profit relative to RegionOracle (Figure 14).
func Figure13and14(sc Scale, cases []ValueDistCase, seed int64) (f13, f14 []Row, err error) {
	f13 = make([]Row, len(cases))
	f14 = make([]Row, len(cases))
	err = ParallelFor(len(cases), func(i int) error {
		vc := cases[i]
		s := NewSetup(sc, WithLoad(1), WithValueDist(vc.Dist), WithSeed(seed))
		res, err := s.RunSchemes(SchemeOPT, SchemePretium, SchemeRegionOracle)
		if err != nil {
			return err
		}
		opt := res[SchemeOPT].Report.Welfare
		rel := func(n string) float64 {
			if opt == 0 {
				return 0
			}
			return res[n].Report.Welfare / opt
		}
		f13[i] = Row{Label: vc.Name, Columns: []Col{
			{Name: SchemePretium, Value: rel(SchemePretium)},
			{Name: SchemeRegionOracle, Value: rel(SchemeRegionOracle)},
		}}
		ro := res[SchemeRegionOracle].Report.Profit
		relP := res[SchemePretium].Report.Profit
		if ro != 0 {
			relP = relP / math.Abs(ro)
		}
		f14[i] = Row{Label: vc.Name, Columns: []Col{
			{Name: "Pretium_profit_rel_RegionOracle", Value: relP},
		}}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return f13, f14, nil
}

// Table4 reports per-module runtimes (median and 95th percentile) from a
// Pretium run, mirroring the paper's Table 4.
func Table4(sc Scale, seed int64) ([]Row, error) {
	s := NewSetup(sc, WithLoad(2), WithSeed(seed))
	pret, err := s.RunPretium(nil)
	if err != nil {
		return nil, err
	}
	mk := func(name string, ds []time.Duration) Row {
		xs := make([]float64, len(ds))
		for i, d := range ds {
			xs[i] = d.Seconds()
		}
		med, _ := stats.Percentile(xs, 50)
		p95, _ := stats.Percentile(xs, 95)
		return Row{Label: name, Columns: []Col{
			{Name: "median_s", Value: med},
			{Name: "p95_s", Value: p95},
			{Name: "runs", Value: float64(len(xs))},
		}}
	}
	tm := pret.Controller.Timings
	rows := []Row{}
	if len(tm.RA) > 0 {
		rows = append(rows, mk("RA(per request)", tm.RA))
	}
	if len(tm.SAM) > 0 {
		rows = append(rows, mk("SAM(per step)", tm.SAM))
	}
	if len(tm.PC) > 0 {
		rows = append(rows, mk("PC(per window)", tm.PC))
	}
	return rows, nil
}

// schemeOrder returns result keys in canonical order.
func schemeOrder(res map[string]SchemeResult) []string {
	order := []string{SchemeOPT, SchemeNoPrices, SchemeRegionOracle, SchemePeakOracle, SchemeVCGLike, SchemePretium, SchemeNoMenu, SchemeNoSAM}
	var out []string
	for _, n := range order {
		if _, ok := res[n]; ok {
			out = append(out, n)
		}
	}
	// Any extras, alphabetically.
	var extra []string
	for n := range res {
		found := false
		for _, o := range out {
			if o == n {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
