package exp

import (
	"fmt"

	"pretium/internal/chaos"
	"pretium/internal/core"
	"pretium/internal/graph"
	"pretium/internal/sim"
)

// ChaosScenario is one named injection schedule plus the welfare-loss
// bound the run must stay within. MaxWelfareLoss is a fraction of the
// clean run's welfare magnitude: 1.0 means "may lose everything but not
// go meaningfully negative", lower is tighter.
type ChaosScenario struct {
	Name           string
	Injector       chaos.Injector
	MaxWelfareLoss float64
}

// ChaosResult compares a clean Pretium run against the same setup under
// an injection schedule.
type ChaosResult struct {
	Scenario ChaosScenario
	Clean    SchemeResult
	Chaotic  SchemeResult
	// Health is the chaotic controller's degradation report.
	Health *core.Health
	// WelfareLoss = (clean - chaotic) / max(|clean|, 1).
	WelfareLoss float64
}

// RunChaos runs Pretium clean and under the scenario's injector, then
// asserts the robustness contract: the chaotic run must complete the
// horizon, never violate physical link capacities, and keep its welfare
// loss within the scenario's bound. Any breach is returned as an error —
// this is the harness's notion of a failed chaos experiment, as opposed
// to a merely degraded one (which is the expected outcome and shows up
// in Health).
func (s *Setup) RunChaos(scen ChaosScenario) (ChaosResult, error) {
	clean, err := s.RunPretium(nil)
	if err != nil {
		return ChaosResult{}, fmt.Errorf("clean run: %w", err)
	}
	return s.RunChaosAgainst(clean, scen)
}

// RunChaosAgainst is RunChaos with the clean reference precomputed, so a
// suite can amortize one clean run across scenarios.
func (s *Setup) RunChaosAgainst(clean SchemeResult, scen ChaosScenario) (ChaosResult, error) {
	chaotic, err := s.RunPretium(func(c *core.Config) { c.Chaos = scen.Injector })
	if err != nil {
		return ChaosResult{}, fmt.Errorf("chaos %s: run aborted: %w", scen.Name, err)
	}
	r := ChaosResult{
		Scenario: scen,
		Clean:    clean,
		Chaotic:  chaotic,
		Health:   chaotic.Controller.Health,
	}
	denom := clean.Report.Welfare
	if denom < 0 {
		denom = -denom
	}
	if denom < 1 {
		denom = 1
	}
	r.WelfareLoss = (clean.Report.Welfare - chaotic.Report.Welfare) / denom
	if err := sim.CheckCapacities(s.Net, chaotic.Outcome.Usage, 1e-6); err != nil {
		return r, fmt.Errorf("chaos %s: capacity violated: %w", scen.Name, err)
	}
	if scen.MaxWelfareLoss > 0 && r.WelfareLoss > scen.MaxWelfareLoss {
		return r, fmt.Errorf("chaos %s: welfare loss %.3f exceeds bound %.3f (health: %s)",
			scen.Name, r.WelfareLoss, scen.MaxWelfareLoss, r.Health.Summary())
	}
	return r, nil
}

// fattestEdge picks the largest-capacity link — a fat inter-region pipe,
// the most disruptive thing to flap.
func fattestEdge(net *graph.Network) graph.EdgeID {
	best := graph.EdgeID(0)
	bestCap := -1.0
	for _, e := range net.Edges() {
		if e.Capacity > bestCap {
			bestCap = e.Capacity
			best = e.ID
		}
	}
	return best
}

// DefaultChaosScenarios is the standing robustness gauntlet: solver
// outages and timeouts (the ladder must reach greedy and come back),
// Price Computer outages (prices must be retained, not corrupted),
// poisoned prices in both directions, and a flapping fat link. Welfare
// bounds are deliberately loose — they catch collapse (capacity chaos or
// admission meltdown), not optimality drift.
func DefaultChaosScenarios(s *Setup) []ChaosScenario {
	steps := s.Scale.Steps
	mid := steps / 3
	return []ChaosScenario{
		{
			// Total outage: every step rides the fallback, which still owes
			// every sold guarantee — including ones only carriable over
			// priced pipes — so the bound is the loosest of the gauntlet.
			Name:           "sam-outage-all",
			Injector:       chaos.SolverOutage{Module: chaos.ModuleSAM, From: 0, To: steps - 1, Mode: chaos.Fail},
			MaxWelfareLoss: 2.5,
		},
		{
			Name:           "sam-timeout-mid",
			Injector:       chaos.SolverOutage{Module: chaos.ModuleSAM, From: mid, To: 2 * mid, Mode: chaos.Timeout},
			MaxWelfareLoss: 1.5,
		},
		{
			Name:           "pc-outage-all",
			Injector:       chaos.SolverOutage{Module: chaos.ModulePC, From: 0, To: steps - 1, Mode: chaos.Fail},
			MaxWelfareLoss: 1.0,
		},
		{
			Name:           "price-spike-10x",
			Injector:       chaos.PriceCorruption{From: mid, To: 2 * mid, Factor: 10},
			MaxWelfareLoss: 1.5,
		},
		{
			Name:           "price-zero",
			Injector:       chaos.PriceCorruption{From: mid, To: 2 * mid, Factor: 0},
			MaxWelfareLoss: 3,
		},
		{
			Name:           "fat-link-flap",
			Injector:       chaos.CapacityFlap{Edge: fattestEdge(s.Net), From: 0, To: steps - 1, Period: 1, Frac: 0.5},
			MaxWelfareLoss: 1.5,
		},
		{
			Name: "perfect-storm",
			Injector: chaos.Plan{
				chaos.SolverOutage{Module: chaos.ModuleSAM, From: mid, To: 2 * mid, Mode: chaos.Fail},
				chaos.SolverOutage{Module: chaos.ModulePC, From: 0, To: steps - 1, Mode: chaos.Fail},
				chaos.CapacityFlap{Edge: fattestEdge(s.Net), From: mid, To: 2 * mid, Period: 2, Frac: 0.5},
			},
			MaxWelfareLoss: 3,
		},
	}
}

// ChaosSuite runs the default gauntlet at load 2 and reports, per
// scenario: relative welfare loss, how many steps degraded, total
// degradation events, and the worst ladder level hit (as its numeric
// severity). A scenario that breaches its contract aborts the suite.
func ChaosSuite(sc Scale, seed int64) ([]Row, error) {
	s := NewSetup(sc, WithLoad(2), WithSeed(seed))
	clean, err := s.RunPretium(nil)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, scen := range DefaultChaosScenarios(s) {
		r, err := s.RunChaosAgainst(clean, scen)
		if err != nil {
			return nil, err
		}
		degraded, worst := 0, core.LevelOK
		for _, w := range r.Health.Worst {
			if w > core.LevelOK {
				degraded++
			}
			if w > worst {
				worst = w
			}
		}
		rows = append(rows, Row{Label: scen.Name, Columns: []Col{
			{Name: "welfLoss", Value: r.WelfareLoss},
			{Name: "degradedSteps", Value: float64(degraded)},
			{Name: "events", Value: float64(len(r.Health.Events))},
			{Name: "worstLevel", Value: float64(worst)},
		}})
	}
	return rows, nil
}
