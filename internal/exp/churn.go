package exp

import (
	"fmt"
	"math"

	"pretium/internal/chaos"
	"pretium/internal/core"
	"pretium/internal/graph"
	"pretium/internal/sim"
)

// ChurnScenario is one deterministic topology-churn script: link cuts,
// maintenance drains, and correlated (SRLG) failures replayed against a
// Pretium run. Unlike ChaosScenario there is no welfare bound — churn
// runs are judged on hard conservation invariants instead (see RunChurn).
type ChurnScenario struct {
	Name     string
	Injector chaos.Injector
	// AllowReneges marks scenarios whose injection kills the solver
	// itself: the repair ladder bottoms out at repair-skipped and
	// guarantees renege honestly. Every other scenario must end with
	// zero reneged bytes — every admitted byte delivered or refunded.
	AllowReneges bool
}

// ChurnResult is one gauntlet run plus the derived accounting facts the
// invariants were checked against.
type ChurnResult struct {
	Scenario ChurnScenario
	Result   SchemeResult
	// Health is the controller's degradation report (repair rungs land
	// under core.ModuleRepair).
	Health *core.Health
	// Preempted counts guarantees bought back; RefundTotal is the
	// currency returned for them.
	Preempted   int
	RefundTotal float64
}

// churnTol bounds float drift in the byte-conservation checks;
// centTol is the currency slack for refund accounting ("to the cent").
const (
	churnTol = 1e-3
	centTol  = 0.005
)

// RunChurn replays one churn scenario and enforces the repair contract:
//
//   - the run completes the horizon;
//   - realized usage never exceeds nameplate capacity, nor the
//     *surviving* capacity of any link while it is cut or drained;
//   - every refund record is self-consistent (amount = paid x
//     undelivered fraction) and the records sum to the outcome's
//     refunded total — conservation to the cent;
//   - unless the scenario also kills the solver, no guarantee is
//     silently violated: reneged bytes stay at zero.
//
// A breached invariant is returned as an error; degradation alone is the
// expected outcome and shows up in Health.
func (s *Setup) RunChurn(scen ChurnScenario) (ChurnResult, error) {
	res, err := s.RunPretium(func(c *core.Config) { c.Chaos = scen.Injector })
	if err != nil {
		return ChurnResult{}, fmt.Errorf("churn %s: run aborted: %w", scen.Name, err)
	}
	r := ChurnResult{Scenario: scen, Result: res, Health: res.Controller.Health}

	if err := sim.CheckCapacities(s.Net, res.Outcome.Usage, 1e-6); err != nil {
		return r, fmt.Errorf("churn %s: nameplate capacity violated: %w", scen.Name, err)
	}
	// Surviving capacity per (edge, step): nameplate minus the injected
	// outage. The overlay is deterministic in the step index, so the
	// post-run state still reports the outage each step ran under.
	st := res.Controller.State()
	surviving := make([][]float64, s.Net.NumEdges())
	for _, e := range s.Net.Edges() {
		row := make([]float64, s.Scale.Steps)
		for t := range row {
			c := e.Capacity - st.OutageAt(e.ID, t)
			if c < 0 {
				c = 0
			}
			row[t] = c
		}
		surviving[e.ID] = row
	}
	if err := sim.CheckCapacitiesAgainst(res.Outcome.Usage, surviving, 1e-6); err != nil {
		return r, fmt.Errorf("churn %s: %w", scen.Name, err)
	}

	// Refund conservation: each record certifies itself, and the records
	// must add up to exactly what the outcome says was returned.
	recorded := 0.0
	for _, ref := range res.Controller.Refunds {
		want := 0.0
		if ref.Bought > 0 {
			want = ref.Paid * ref.Bytes / ref.Bought
		}
		if math.Abs(ref.Amount-want) > centTol || ref.Bytes < 0 || ref.Bytes > ref.Bought+churnTol {
			return r, fmt.Errorf("churn %s: refund for req %d inconsistent: %+v", scen.Name, ref.Req, ref)
		}
		recorded += ref.Amount
	}
	r.Preempted = len(res.Controller.Refunds)
	r.RefundTotal = recorded
	if math.Abs(recorded-res.Report.RefundedTotal) > centTol {
		return r, fmt.Errorf("churn %s: refund records sum to %.4f, outcome refunded %.4f",
			scen.Name, recorded, res.Report.RefundedTotal)
	}

	if !scen.AllowReneges && res.Report.RenegedBytes > churnTol {
		return r, fmt.Errorf("churn %s: %.4f bytes reneged without refund (health: %s)",
			scen.Name, res.Report.RenegedBytes, r.Health.Summary())
	}
	return r, nil
}

// srlgGroup is the shared-risk group used by the correlated-failure
// scenarios: every edge leaving the fattest link's tail node, the closest
// thing the generated WAN has to "one conduit cut severs the site".
func srlgGroup(net *graph.Network) []graph.EdgeID {
	fat := net.Edge(fattestEdge(net))
	return net.Out(fat.From)
}

// busiestEdge picks the cut target for the single-link scenarios: the
// edge with the most demand-weighted appearances in request route sets
// whose windows overlap [from, to]. The fattest link can sit idle at
// small scales; a cut that strands nobody exercises nothing, so the
// gauntlet aims where the traffic actually is.
func busiestEdge(s *Setup, from, to int) graph.EdgeID {
	score := make([]float64, s.Net.NumEdges())
	for _, r := range s.Requests {
		if r.End < from || r.Start > to || len(r.Routes) == 0 {
			continue
		}
		w := r.Demand / float64(len(r.Routes))
		for _, route := range r.Routes {
			for _, e := range route {
				score[e] += w
			}
		}
	}
	best := graph.EdgeID(0)
	for e := range score {
		if score[e] > score[best] {
			best = graph.EdgeID(e)
		}
	}
	return best
}

// DefaultChurnScenarios is the standing churn gauntlet: an unannounced
// full cut of the busiest link, an announced partial cut, a ramped
// maintenance drain, an SRLG failure severing every path out of a site
// (forcing the preempt-and-refund rung), the flap/drain composition on a
// single edge, a storm of all three, and the worst case — churn while
// the repair solver itself is dead.
func DefaultChurnScenarios(s *Setup) []ChurnScenario {
	steps := s.Scale.Steps
	mid := steps / 3
	fat := busiestEdge(s, mid, 2*mid)
	ramp := s.Scale.StepsPerDay / 4
	if ramp < 1 {
		ramp = 1
	}
	return []ChurnScenario{
		{
			Name:     "fat-cut",
			Injector: chaos.LinkCut{Edge: fat, From: mid, To: 2 * mid},
		},
		{
			Name:     "partial-cut-announced",
			Injector: chaos.LinkCut{Edge: fat, From: mid, To: 2 * mid, Survive: 0.5, Announce: -1},
		},
		{
			Name:     "maintenance-drain",
			Injector: chaos.MaintenanceDrain{Edge: fat, From: mid, To: 2 * mid, Ramp: ramp, Announce: -1},
		},
		{
			Name:     "srlg-site-cut",
			Injector: chaos.CorrelatedFailure{Edges: srlgGroup(s.Net), From: mid, To: 2 * mid},
		},
		{
			Name: "flap-drain-compose",
			Injector: chaos.Plan{
				chaos.CapacityFlap{Edge: fat, From: mid, To: 2 * mid, Period: 2, Frac: 0.5},
				chaos.MaintenanceDrain{Edge: fat, From: mid, To: 2 * mid, Ramp: ramp, Survive: 0.5, Announce: -1},
			},
		},
		{
			Name: "churn-storm",
			Injector: chaos.Plan{
				chaos.LinkCut{Edge: fat, From: mid, To: 2 * mid},
				chaos.CorrelatedFailure{Edges: srlgGroup(s.Net), From: mid + 1, To: 2 * mid},
				chaos.MaintenanceDrain{Edge: fat, From: 2*mid + 1, To: steps - 1, Ramp: ramp, Announce: -1},
			},
		},
		{
			// The no-repair-possible worst case: the solver dies at the
			// same instant the topology churns, so plans laid while it was
			// healthy are stranded and every repair solve fails too. The
			// ladder must record repair-skipped and renege *visibly* —
			// conservation and capacity invariants still hold, silent
			// violation never does.
			Name: "cut-with-dead-solver",
			Injector: chaos.Plan{
				chaos.CorrelatedFailure{Edges: srlgGroup(s.Net), From: mid, To: 2 * mid},
				chaos.SolverOutage{Module: chaos.ModuleSAM, From: mid, To: steps - 1, Mode: chaos.Fail},
			},
			AllowReneges: true,
		},
	}
}

// ChurnGauntlet replays the default churn scripts at load 2 and reports,
// per scenario: guarantees preempted, currency refunded, bytes reneged
// (nonzero only in dead-solver scenarios), degraded steps, and the worst
// ladder level hit. Any conservation breach aborts the gauntlet.
func ChurnGauntlet(sc Scale, seed int64) ([]Row, error) {
	s := NewSetup(sc, WithLoad(2), WithSeed(seed))
	var rows []Row
	for _, scen := range DefaultChurnScenarios(s) {
		r, err := s.RunChurn(scen)
		if err != nil {
			return nil, err
		}
		degraded, worst := 0, core.LevelOK
		for _, w := range r.Health.Worst {
			if w > core.LevelOK {
				degraded++
			}
			if w > worst {
				worst = w
			}
		}
		rows = append(rows, Row{Label: scen.Name, Columns: []Col{
			{Name: "preempted", Value: float64(r.Preempted)},
			{Name: "refunded", Value: r.RefundTotal},
			{Name: "reneged", Value: r.Result.Report.RenegedBytes},
			{Name: "degradedSteps", Value: float64(degraded)},
			{Name: "worstLevel", Value: float64(worst)},
		}})
	}
	return rows, nil
}
