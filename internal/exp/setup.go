// Package exp contains the experiment harness: one function per table and
// figure of the paper's evaluation (§6), each returning the printable
// series/rows it reports. cmd/experiments and the root benchmarks are thin
// wrappers over this package; every experiment is deterministic given its
// Scale and seed.
package exp

import (
	"pretium/internal/cost"
	"pretium/internal/graph"
	"pretium/internal/lp"
	"pretium/internal/obs"
	"pretium/internal/stats"
	"pretium/internal/traffic"
)

// Observe is the default observability recorder attached to every Setup
// created by NewSetup (overridable per setup with WithObs). cmd/experiments
// sets it from the -trace/-metrics flags before launching experiments.
// Metrics aggregate safely across concurrent experiments (the registry is
// atomic), but trace event *interleaving* across concurrent runs is
// scheduler-dependent — for a byte-deterministic stream run a single
// experiment, or give each run its own Recorder via WithObs.
var Observe *obs.Recorder

// Scale selects the experiment size. The paper runs a 106-node WAN with
// 5-minute timesteps and Gurobi; our exact-but-slower simplex reproduces
// the same pipeline at reduced scale (see DESIGN.md substitution table).
type Scale struct {
	Name           string
	Regions        int
	NodesPerRegion int
	// Steps is the simulated horizon; StepsPerDay the diurnal period and
	// pricing/charging window.
	Steps       int
	StepsPerDay int
	// MeanRequestSize controls request count (volume / size).
	MeanRequestSize float64
	// AggregateSteps groups this many timesteps of matrix volume into
	// each request (controls request count at fixed traffic volume).
	AggregateSteps int
	// RoutesPerRequest is the admissible-route fan-out.
	RoutesPerRequest int
	// BaseDemand scales the traffic matrix before the load factor.
	BaseDemand float64
	// GridLevels controls oracle price-search granularity.
	GridLevels int
	// MeanUsageCost is C_e on usage-priced links; sized relative to the
	// value distribution so percentile charges genuinely bite (the
	// provider's 95th-percentile bills are a first-order cost in the
	// paper, not a rounding error).
	MeanUsageCost float64
	// Solver bounds each LP solve.
	Solver lp.Options
}

// Small is the scale used by unit tests and benchmarks: tiny but still
// multi-region, multi-window, multi-path.
func Small() Scale {
	return Scale{
		Name:             "small",
		Regions:          2,
		NodesPerRegion:   3,
		Steps:            12,
		StepsPerDay:      6,
		MeanRequestSize:  40,
		AggregateSteps:   2,
		RoutesPerRequest: 2,
		BaseDemand:       6,
		GridLevels:       3,
		MeanUsageCost:    10,
	}
}

// Default is the scale used for the headline experiment runs.
func Default() Scale {
	return Scale{
		Name:             "default",
		Regions:          3,
		NodesPerRegion:   3,
		Steps:            36,
		StepsPerDay:      12,
		MeanRequestSize:  60,
		AggregateSteps:   4,
		RoutesPerRequest: 2,
		BaseDemand:       6,
		GridLevels:       4,
		MeanUsageCost:    10,
	}
}

// Medium is the headline scale under the name the churn gauntlet's CI
// tier uses — identical to Default, aliased so test names and workflow
// matrices can say small/medium/paper without conflating "default" (a
// CLI fallback) with a size.
func Medium() Scale {
	sc := Default()
	sc.Name = "medium"
	return sc
}

// Paper approximates the evaluation scale of the paper itself: a
// 105-node WAN (15 regions x 7 datacenters; the production network had
// 106 nodes / 226 edges) over a week of hourly steps. Every LP the
// harness builds at this scale is solvable by the built-in simplex, but a
// full `-exp all` run takes many hours on one core — the paper used
// Gurobi on their testbed. Provided for completeness; Default is the
// supported evaluation scale.
func Paper() Scale {
	return Scale{
		Name:             "paper",
		Regions:          15,
		NodesPerRegion:   7,
		Steps:            7 * 24,
		StepsPerDay:      24,
		MeanRequestSize:  120,
		AggregateSteps:   8,
		RoutesPerRequest: 3,
		BaseDemand:       6,
		GridLevels:       4,
		MeanUsageCost:    10,
	}
}

// Setup is one fully-instantiated experiment input: topology, traffic
// matrix series, and the synthesized request stream.
type Setup struct {
	Scale    Scale
	Net      *graph.Network
	Series   traffic.Series
	Requests []*traffic.Request
	Cost     cost.Config
	// LoadFactor records the applied traffic scaling.
	LoadFactor float64
	ValueDist  stats.Dist
	Seed       int64
	// Obs, when non-nil, is handed to every Pretium controller built from
	// this setup (see PretiumConfig). Defaults to the package-level
	// Observe recorder.
	Obs *obs.Recorder
}

// SetupOption mutates the setup configuration before generation.
type SetupOption func(*setupParams)

type setupParams struct {
	loadFactor float64
	valueDist  stats.Dist
	seed       int64
	costScale  float64
	rateFrac   float64
	rec        *obs.Recorder
}

// WithLoad sets the traffic-matrix load factor (paper: 0.5–4).
func WithLoad(f float64) SetupOption {
	return func(p *setupParams) { p.loadFactor = f }
}

// WithValueDist sets the request-value distribution (Figures 13–14 sweep
// normal and pareto with varying mu/sigma).
func WithValueDist(d stats.Dist) SetupOption {
	return func(p *setupParams) { p.valueDist = d }
}

// WithSeed overrides the experiment seed.
func WithSeed(s int64) SetupOption {
	return func(p *setupParams) { p.seed = s }
}

// WithCostScale multiplies usage-priced link costs (Figure 12 sweep).
func WithCostScale(f float64) SetupOption {
	return func(p *setupParams) { p.costScale = f }
}

// WithRateFraction makes a share of requests rate requests.
func WithRateFraction(f float64) SetupOption {
	return func(p *setupParams) { p.rateFrac = f }
}

// WithObs attaches an observability recorder to the setup, overriding the
// package-level Observe default (pass nil to detach).
func WithObs(r *obs.Recorder) SetupOption {
	return func(p *setupParams) { p.rec = r }
}

// NewSetup generates a deterministic experiment input at the given scale.
func NewSetup(sc Scale, opts ...SetupOption) *Setup {
	// Value scale calibration: the mean value per byte sits *below* the
	// NoPrices unit-value assumption and below peak marginal cost on
	// usage-priced links. This is what makes the paper's Figure 6 shape
	// possible at all — a value-blind scheduler overpays for peak
	// capacity and its welfare goes negative, while admission control
	// keeps Pretium positive.
	p := setupParams{
		loadFactor: 1,
		valueDist:  stats.Normal{Mu: 0.35, Sigma: 0.15, Floor: 0.02},
		seed:       1,
		costScale:  1,
		rec:        Observe,
	}
	for _, o := range opts {
		o(&p)
	}
	wc := graph.DefaultWANConfig()
	wc.Regions = sc.Regions
	wc.NodesPerRegion = sc.NodesPerRegion
	if sc.MeanUsageCost > 0 {
		wc.MeanUsageCost = sc.MeanUsageCost
	}
	// Purchased (usage-priced) links are the fat inter-region pipes;
	// owned cross-region capacity is thin. Intra-region links are tight
	// enough that congestion varies per link and hour — the structure a
	// flat two-tier price cannot express (Figure 6's point), and the
	// scarcity that makes partial-fulfillment menus matter (Figure 11).
	wc.UnpricedInterFactor = 0.35
	wc.IntraCapacity = 40
	wc.Seed = p.seed
	net := graph.GenerateWAN(wc)
	if p.costScale != 1 {
		net.ScaleUsageCosts(p.costScale)
	}

	gc := traffic.DefaultGenConfig(sc.Steps)
	gc.StepsPerDay = sc.StepsPerDay
	gc.BaseDemand = sc.BaseDemand
	gc.Seed = p.seed + 100
	series := traffic.Generate(net, gc)
	if p.loadFactor != 1 {
		series.Scale(p.loadFactor)
	}

	rc := traffic.DefaultRequestConfig()
	// Higher load means *bigger* transfers, not more of them: scaling
	// the mean request size with load keeps the request count (and so
	// LP size) stable across the Figure 6 load sweep.
	rc.MeanSize = sc.MeanRequestSize * p.loadFactor
	rc.ValueDist = p.valueDist
	rc.RoutesPerRequest = sc.RoutesPerRequest
	rc.MaxSlack = sc.StepsPerDay / 2
	rc.RateFraction = p.rateFrac
	rc.AggregateSteps = sc.AggregateSteps
	rc.Seed = p.seed + 200
	reqs := traffic.Synthesize(net, series, rc)

	return &Setup{
		Scale:      sc,
		Net:        net,
		Series:     series,
		Requests:   reqs,
		Cost:       cost.DefaultConfig(sc.StepsPerDay),
		LoadFactor: p.loadFactor,
		ValueDist:  p.valueDist,
		Seed:       p.seed,
		Obs:        p.rec,
	}
}
