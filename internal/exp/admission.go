package exp

import (
	"pretium/internal/pricing"
	"pretium/internal/sim"
	"pretium/internal/traffic"
)

// RunAdmissionOnly serves the setup's whole arrival stream through the
// batched RA front-end alone — static prices, no SAM, no price
// recomputation — and replays the preliminary schedules as the realized
// outcome. It isolates the admission fast path end to end (menus,
// Theorem 5.2 purchases, reservations) both as an experiment baseline
// (how much does SAM add on top of pure admission-time TE?) and as the
// serving-throughput harness the admission benchmarks build on.
// Rate and scavenger requests are skipped: those classes only exist
// through the controller's expansion machinery.
func (s *Setup) RunAdmissionOnly(initialPrice float64) (*sim.Outcome, sim.Report, error) {
	st := pricing.NewState(s.Net, s.Scale.Steps, initialPrice)
	ad := pricing.NewAdmitter(st)
	adms := make([]*pricing.Admission, len(s.Requests))
	for i, r := range s.Requests {
		if r.Kind != traffic.ByteRequest {
			continue
		}
		adms[i] = ad.Admit(r)
	}
	out, err := sim.ReplayAdmissions(s.Net, s.Requests, adms, s.Scale.Steps)
	if err != nil {
		return nil, sim.Report{}, err
	}
	rep, err := sim.Evaluate(s.Net, s.Requests, out, s.Cost)
	return out, rep, err
}
