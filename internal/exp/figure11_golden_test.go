package exp

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// updateGolden rewrites the checked-in figure goldens instead of
// comparing: go test ./internal/exp -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden figure files")

const fig11Golden = "testdata/figure11_golden.csv"

// fig11GoldenTolerance is deliberately tight: the ablation pipeline is
// deterministic end to end (seeded setup, exact simplex, fixed worker
// fan-out), so the only acceptable drift is last-ulp float noise. Any
// behavioral change to admission, scheduling, or pricing must show up
// here and be acknowledged with -update.
const fig11GoldenTolerance = 1e-9

func fig11Rows(t *testing.T) []Row {
	t.Helper()
	rows, err := Figure11(Small(), []float64{0.5, 1, 2}, 1)
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	return rows
}

// TestFigure11Golden locks the fig11-family ablation numbers (welfare of
// full Pretium / NoMenu / NoSAM relative to OPT, per load factor)
// against checked-in golden values.
func TestFigure11Golden(t *testing.T) {
	rows := fig11Rows(t)
	if *updateGolden {
		var b strings.Builder
		b.WriteString("label,scheme,value\n")
		for _, r := range rows {
			for _, c := range r.Columns {
				fmt.Fprintf(&b, "%s,%s,%.17g\n", r.Label, c.Name, c.Value)
			}
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fig11Golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", fig11Golden)
		return
	}
	f, err := os.Open(fig11Golden)
	if err != nil {
		t.Fatalf("open golden (run with -update to create): %v", err)
	}
	defer f.Close()
	want := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Scan() // header
	for sc.Scan() {
		parts := strings.Split(sc.Text(), ",")
		if len(parts) != 3 {
			t.Fatalf("malformed golden line %q", sc.Text())
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			t.Fatalf("malformed golden value %q: %v", parts[2], err)
		}
		want[parts[0]+","+parts[1]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, r := range rows {
		for _, c := range r.Columns {
			key := r.Label + "," + c.Name
			w, ok := want[key]
			if !ok {
				t.Errorf("cell %s missing from golden — refresh with -update", key)
				continue
			}
			cells++
			if math.Abs(c.Value-w) > fig11GoldenTolerance {
				t.Errorf("%s = %.17g, golden %.17g (|diff| %.3g > %g)", key, c.Value, w, math.Abs(c.Value-w), fig11GoldenTolerance)
			}
		}
	}
	if cells != len(want) {
		t.Errorf("figure emitted %d golden cells, golden file has %d", cells, len(want))
	}
}
