package exp

import (
	"testing"

	"pretium/internal/chaos"
	"pretium/internal/core"
)

// TestChaosSuiteSmall runs the full gauntlet at small scale: every
// scenario must hold its contract (horizon completed, zero capacity
// violations, welfare loss within bound).
func TestChaosSuiteSmall(t *testing.T) {
	rows, err := ChaosSuite(Small(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultChaosScenarios(NewSetup(Small()))) {
		t.Fatalf("suite produced %d rows, want one per scenario", len(rows))
	}
}

// TestRunChaosHealthAndLoss spot-checks the driver's outputs on a total
// SAM outage: the chaotic run must degrade (greedy events present) yet
// stay comparable to the clean run.
func TestRunChaosHealthAndLoss(t *testing.T) {
	s := NewSetup(Small(), WithLoad(2), WithSeed(1))
	steps := s.Scale.Steps
	r, err := s.RunChaos(ChaosScenario{
		Name:           "sam-outage-all",
		Injector:       chaos.SolverOutage{Module: chaos.ModuleSAM, From: 0, To: steps - 1, Mode: chaos.Fail},
		MaxWelfareLoss: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Health.Degraded() {
		t.Error("total SAM outage left the health report clean")
	}
	greedy := 0
	for _, e := range r.Health.EventsAt(core.ModuleSAM) {
		if e.Level == core.LevelGreedy {
			greedy++
		}
	}
	if greedy == 0 {
		t.Error("no greedy-fallback events under a total SAM outage")
	}
	if r.Clean.Report.Welfare <= 0 {
		t.Errorf("clean welfare %v, want positive (reference run broken)", r.Clean.Report.Welfare)
	}
}
