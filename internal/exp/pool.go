package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers bounds the concurrency of the experiment fan-out (LoadSweep and
// the per-figure sweeps). It defaults to the machine's parallelism; tests
// override it to exercise specific schedules. Values < 1 mean sequential.
var Workers = runtime.GOMAXPROCS(0)

// ParallelFor runs fn(0..n-1) across min(Workers, n) goroutines and blocks
// until all complete. Work items are handed out by an atomic counter, so
// the schedule is work-stealing but the caller-observable behavior is
// deterministic as long as each fn(i) writes only to its own index slot:
// results land in index order regardless of execution order, and the
// returned error is the lowest-index failure, matching what a sequential
// loop that continued past errors would report first.
func ParallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
