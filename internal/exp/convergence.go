package exp

import (
	"fmt"
	"math"

	"pretium/internal/traffic"
)

// Convergence probes the §4.4 stability claim: when every day draws
// requests from the same demand distribution, the Price Computer's
// window-to-window updates settle down. It simulates `days` statistically
// identical days and reports, per window transition, the relative L1
// distance between consecutive published price vectors.
func Convergence(sc Scale, days int, seed int64) ([]Row, error) {
	if days < 3 {
		return nil, fmt.Errorf("exp: convergence needs >= 3 days")
	}
	day := sc.StepsPerDay
	// One day of traffic, tiled so every day has identical volume.
	base := NewSetup(sc, WithSeed(seed))
	oneDay := base.Series[:day]
	tiled := make(traffic.Series, 0, days*day)
	for d := 0; d < days; d++ {
		tiled = append(tiled, oneDay...)
	}
	rc := traffic.DefaultRequestConfig()
	rc.MeanSize = sc.MeanRequestSize
	rc.ValueDist = base.ValueDist
	rc.RoutesPerRequest = sc.RoutesPerRequest
	rc.MaxSlack = day / 2
	rc.AggregateSteps = sc.AggregateSteps
	rc.Seed = seed + 300
	reqs := traffic.Synthesize(base.Net, tiled, rc)

	s := &Setup{
		Scale:      sc,
		Net:        base.Net,
		Series:     tiled,
		Requests:   reqs,
		Cost:       base.Cost,
		LoadFactor: 1,
		ValueDist:  base.ValueDist,
		Seed:       seed,
	}
	s.Scale.Steps = days * day
	res, err := s.RunPretium(nil)
	if err != nil {
		return nil, err
	}

	// Price vector of window w: the published prices over its steps.
	dist := func(w1, w2 int) float64 {
		num, den := 0.0, 0.0
		for e := range res.Controller.PriceTrace {
			for i := 0; i < day; i++ {
				a := res.Controller.PriceTrace[e][w1*day+i]
				b := res.Controller.PriceTrace[e][w2*day+i]
				num += math.Abs(a - b)
				den += math.Abs(a) + math.Abs(b)
			}
		}
		if den == 0 {
			return 0
		}
		return 2 * num / den
	}
	var rows []Row
	for w := 1; w < days; w++ {
		rows = append(rows, Row{
			Label: fmt.Sprintf("window%d->%d", w-1, w),
			Columns: []Col{
				{Name: "rel_L1_price_change", Value: dist(w-1, w)},
			},
		})
	}
	return rows, nil
}
