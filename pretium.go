// Package pretium is an open-source implementation of Pretium, the
// framework of Jalaparti et al., "Dynamic Pricing and Traffic Engineering
// for Timely Inter-Datacenter Transfers" (SIGCOMM 2016): joint dynamic
// pricing and traffic engineering for inter-datacenter WAN transfers.
//
// A provider instantiates a Network (the WAN graph with per-link
// capacities and 95th-percentile usage charges), then runs a Controller
// over a stream of Requests. Per the paper's three-module design
// (Figure 3):
//
//   - the request admission interface quotes each arriving request a
//     convex price menu assembled from per-(link, timestep) internal
//     prices, guarantees up to x̄ bytes by the deadline, and reserves a
//     preliminary schedule on minimum-price paths;
//   - the schedule adjustment module re-optimizes the forward plan every
//     timestep under percentile-cost-aware welfare (the top-k
//     sorting-network encoding of §4.2);
//   - the price computer refreshes internal prices from the duals of an
//     offline welfare LP over recent history (§4.3).
//
// Everything is built on the standard library, including the bounded
// revised-simplex LP solver in internal/lp that stands in for the paper's
// Gurobi dependency.
//
// # Quick start
//
//	net := pretium.GenerateWAN(pretium.DefaultWANConfig())
//	series := pretium.GenerateTraffic(net, pretium.DefaultTrafficConfig(48))
//	reqs := pretium.SynthesizeRequests(net, series, pretium.DefaultRequestConfig())
//	ctl, err := pretium.NewController(net, reqs, pretium.DefaultConfig(48))
//	if err != nil { ... }
//	outcome, err := ctl.Run()
//	report, err := pretium.Evaluate(net, reqs, outcome, pretium.DefaultCostConfig(24))
//
// See examples/ for runnable programs and internal/exp for the harness
// that regenerates every table and figure of the paper's evaluation.
package pretium

import (
	"io"
	"net/http"

	"pretium/internal/core"
	"pretium/internal/cost"
	"pretium/internal/graph"
	"pretium/internal/obs"
	"pretium/internal/pricing"
	"pretium/internal/serve"
	"pretium/internal/sim"
	"pretium/internal/traffic"
)

// Network is the WAN graph: datacenters and directed capacitated links.
type Network = graph.Network

// NodeID and EdgeID identify nodes and links of a Network.
type (
	NodeID = graph.NodeID
	EdgeID = graph.EdgeID
)

// Path is a loop-free route through the network.
type Path = graph.Path

// WANConfig parameterizes the synthetic region-structured WAN generator.
type WANConfig = graph.WANConfig

// Request is one customer transfer request (byte or rate, §3.1).
type Request = traffic.Request

// Request kinds.
const (
	ByteRequest = traffic.ByteRequest
	RateRequest = traffic.RateRequest
)

// TrafficConfig parameterizes the traffic-matrix generator; Series is its
// output; RequestConfig turns a Series into a request stream.
type (
	TrafficConfig = traffic.GenConfig
	Series        = traffic.Series
	RequestConfig = traffic.RequestConfig
)

// Config parameterizes the Pretium controller (all three modules).
type Config = core.Config

// Controller runs Pretium over a request stream.
type Controller = core.Controller

// Outcome is the realized result of a run; Report the derived metrics
// (welfare, profit, completion).
type (
	Outcome = sim.Outcome
	Report  = sim.Report
)

// Menu is a request's price quote: a convex piecewise-linear price
// schedule with a guarantee cap x̄ (§4.1).
type Menu = pricing.Menu

// PriceState is the shared network state (prices + reservations).
type PriceState = pricing.State

// CostConfig is the percentile charging rule for usage-priced links.
type CostConfig = cost.Config

// New returns an empty network to build topologies by hand.
func New() *Network { return graph.New() }

// DefaultWANConfig returns the default synthetic WAN parameters.
func DefaultWANConfig() WANConfig { return graph.DefaultWANConfig() }

// GenerateWAN builds a deterministic region-structured WAN.
func GenerateWAN(cfg WANConfig) *Network { return graph.GenerateWAN(cfg) }

// FourNodeExample builds the worked example of the paper's Figure 2.
func FourNodeExample() (*Network, map[string]NodeID) { return graph.FourNodeExample() }

// DefaultTrafficConfig returns generator settings calibrated to the
// paper's Figure 1 utilization statistics.
func DefaultTrafficConfig(steps int) TrafficConfig { return traffic.DefaultGenConfig(steps) }

// GenerateTraffic produces a traffic-matrix time-series.
func GenerateTraffic(n *Network, cfg TrafficConfig) Series { return traffic.Generate(n, cfg) }

// DefaultRequestConfig returns request-synthesis settings.
func DefaultRequestConfig() RequestConfig { return traffic.DefaultRequestConfig() }

// SynthesizeRequests converts a traffic series into a request stream.
func SynthesizeRequests(n *Network, s Series, cfg RequestConfig) []*Request {
	return traffic.Synthesize(n, s, cfg)
}

// DefaultConfig returns the full Pretium configuration for a horizon.
func DefaultConfig(horizon int) Config { return core.DefaultConfig(horizon) }

// DefaultCostConfig returns the paper's 95th-percentile charging rule
// with the top-10% proxy over windows of the given length.
func DefaultCostConfig(windowLen int) CostConfig { return cost.DefaultConfig(windowLen) }

// NewController creates a Pretium controller over a request stream.
func NewController(n *Network, reqs []*Request, cfg Config) (*Controller, error) {
	return core.New(n, reqs, cfg)
}

// Evaluate computes welfare, profit, and completion metrics for an
// outcome, charging the exact (non-convex) percentile costs.
func Evaluate(n *Network, reqs []*Request, o *Outcome, costCfg CostConfig) (Report, error) {
	return sim.Evaluate(n, reqs, o, costCfg)
}

// QuoteMenu computes a request's price menu against a price state without
// admitting it — the raw §4.1 quoting primitive for custom integrations.
// Callers serving a stream of requests should hold an Admitter instead,
// which reuses the quoting scratch across calls.
func QuoteMenu(st *PriceState, req *Request, maxBytes float64) *Menu {
	return pricing.QuoteMenu(st, req, maxBytes)
}

// Admitter is the batched request-admission front-end: it binds a price
// state to reusable quoting scratch so streams of arrivals are quoted,
// purchased, and reserved without per-request allocation beyond the
// returned records. Admission is what an admission record reports.
type (
	Admitter  = pricing.Admitter
	Admission = pricing.Admission
)

// NewAdmitter creates an admission front-end serving quotes against st.
// Not safe for concurrent use; shard one Admitter + state per goroutine.
func NewAdmitter(st *PriceState) *Admitter { return pricing.NewAdmitter(st) }

// NewPriceState creates a standalone price state (for quoting outside a
// Controller).
func NewPriceState(n *Network, horizon int, basePrice float64) *PriceState {
	return pricing.NewState(n, horizon, basePrice)
}

// Service is the concurrent sharded admission front-end: RA as a
// long-running server. Quotes are lock-free against an epoch-swapped
// immutable snapshot; admissions are sequenced per edge so the result
// stream is bit-identical to a serial Admitter fed the same arrivals.
// ServiceConfig sets the shard count and metrics registry.
type (
	Service       = serve.Service
	ServiceConfig = serve.Config
)

// Metrics is the observability registry service counters land in.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewService wraps a freshly built price state into a concurrent
// admission service; the state is published as epoch 0 and from then on
// Service.Publish is the only way planning inputs change.
func NewService(st *PriceState, cfg ServiceConfig) (*Service, error) { return serve.New(st, cfg) }

// ServiceHandler returns the HTTP/JSON transport over a Service
// (/v1/quote, /v1/admit, /v1/publish, /v1/state, /metrics) — what
// cmd/pretium-serve listens with.
func ServiceHandler(svc *Service, m *Metrics) http.Handler { return serve.Handler(svc, m) }

// ReadTopologyCSV parses a network previously written with
// (*Network).WriteCSV, letting the whole pipeline run on user-supplied
// topologies.
func ReadTopologyCSV(r io.Reader) (*Network, error) { return graph.ReadCSV(r) }

// WriteTraceCSV and ReadTraceCSV persist traffic-matrix series — the
// paper replays recorded traces, and so can this implementation.
func WriteTraceCSV(w io.Writer, s Series) error { return traffic.WriteSeriesCSV(w, s) }

// ReadTraceCSV parses a series written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (Series, error) { return traffic.ReadSeriesCSV(r) }

// WriteRequestsCSV and ReadRequestsCSV persist request streams (routes
// are rebuilt as k-shortest paths on load).
func WriteRequestsCSV(w io.Writer, reqs []*Request) error {
	return traffic.WriteRequestsCSV(w, reqs)
}

// ReadRequestsCSV parses requests written by WriteRequestsCSV.
func ReadRequestsCSV(r io.Reader, n *Network, routesPerRequest int) ([]*Request, error) {
	return traffic.ReadRequestsCSV(r, n, routesPerRequest)
}
