// Benchjson converts `go test -bench` output read from stdin into a JSON
// report. Raw lines pass through to stdout unchanged, so it sits at the
// end of a pipe without hiding the human-readable results:
//
//	go test -run '^$' -bench Admit -benchmem ./internal/pricing | \
//	    go run ./cmd/benchjson -out BENCH_admission.json
//
// Every benchmark line becomes {name, iterations, ns_per_op, bytes_per_op,
// allocs_per_op, metrics}: the three standard units are promoted to
// explicit fields (0 when the bench did not report them) so downstream
// tooling never key-matches against "ns/op" strings, and metrics maps
// every reported unit (standard and custom ReportMetric ones) to its
// value, with the -cpucount suffix stripped from the name. Header lines
// (goos, goarch, pkg, cpu) are captured as metadata.
//
// Repeatable -gate flags turn the report into a regression guard:
//
//	go run ./cmd/benchjson -gate 'BenchmarkSAMSolve/Paper/sparse:allocs/op<=364000'
//
// Each gate names a benchmark, a metric unit, and a ceiling ("<=") or a
// floor (">=" — for rate metrics like a ReportMetric'd ops/sec, where
// regressions point down); a gate whose
// benchmark or unit is missing fails too, so a renamed bench cannot
// silently disarm its guard. Any violation exits 1 after the report is
// written. The unit may be a raw bench unit ("allocs/op", "pivots") or one
// of the promoted JSON field names ("ns_per_op", "bytes_per_op",
// "allocs_per_op") — the latter make wall-clock ceilings expressible
// without shell-quoting a slash:
//
//	go run ./cmd/benchjson -gate 'BenchmarkSAMSolve/Paper/sparse:ns_per_op<=45000000000'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// The three standard `go test -bench` units, promoted out of Metrics
	// so regression tooling reads stable JSON keys; zero when the bench
	// did not report the unit (e.g. -benchmem off).
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

type report struct {
	Meta    map[string]string `json:"meta"`
	Results []result          `json:"results"`
}

// gate is one "bench:unit<=max" ceiling or "bench:unit>=min" floor from
// a -gate flag. Ceilings guard costs (ns/op, allocs); floors guard
// rates (a throughput bench's ops/sec must not regress below the bar).
type gate struct {
	bench string
	unit  string
	bound float64
	floor bool // ">=": bound is a minimum instead of a maximum
}

func parseGate(s string) (gate, error) {
	floor := false
	op := strings.Index(s, "<=")
	if op < 0 {
		op = strings.Index(s, ">=")
		floor = true
	}
	if op < 0 {
		return gate{}, fmt.Errorf("gate %q: want 'bench:unit<=max' or 'bench:unit>=min'", s)
	}
	colon := strings.LastIndex(s[:op], ":")
	if colon < 1 || colon+1 == op {
		return gate{}, fmt.Errorf("gate %q: want 'bench:unit<=max' or 'bench:unit>=min'", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s[op+2:]), 64)
	if err != nil {
		return gate{}, fmt.Errorf("gate %q: bad bound: %v", s, err)
	}
	return gate{bench: s[:colon], unit: s[colon+1 : op], bound: v, floor: floor}, nil
}

// check returns an error unless some result matches the gate's benchmark
// name and holds the metric at or under the ceiling (at or over the
// floor for ">=" gates). A missing benchmark
// or unit is a failure: a renamed bench must take its guard along. The
// promoted JSON field names (ns_per_op, bytes_per_op, allocs_per_op) work
// as units alongside the raw bench units, so wall-clock ceilings read the
// same key the report publishes.
func (g gate) check(results []result) error {
	for _, r := range results {
		if r.Name != g.bench {
			continue
		}
		v, ok := r.Metrics[g.unit]
		if !ok {
			switch g.unit {
			case "ns_per_op":
				v, ok = r.NsPerOp, r.NsPerOp != 0
			case "bytes_per_op":
				v, ok = r.BytesPerOp, r.BytesPerOp != 0
			case "allocs_per_op":
				v, ok = r.AllocsPerOp, r.AllocsPerOp != 0
			}
		}
		if !ok {
			return fmt.Errorf("gate %s: benchmark did not report %q", g.bench, g.unit)
		}
		if g.floor {
			if v < g.bound {
				return fmt.Errorf("gate %s: %s = %g below floor %g", g.bench, g.unit, v, g.bound)
			}
		} else if v > g.bound {
			return fmt.Errorf("gate %s: %s = %g exceeds ceiling %g", g.bench, g.unit, v, g.bound)
		}
		return nil
	}
	return fmt.Errorf("gate %s: benchmark not found in input", g.bench)
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default: stdout after the raw lines)")
	var gates []gate
	flag.Func("gate", "fail (exit 1) unless 'bench:unit<=max' (or 'bench:unit>=min') holds; repeatable", func(s string) error {
		g, err := parseGate(s)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	flag.Parse()

	rep := report{Meta: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseBenchLine(line); ok {
			rep.Results = append(rep.Results, r)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			switch k := strings.TrimSuffix(fields[0], ":"); k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Meta[k] = strings.Join(fields[1:], " ")
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	// Gates run after the report is written so a failing run still leaves
	// the numbers behind for the investigation.
	failed := false
	for _, g := range gates {
		if err := g.check(rep.Results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkName-8  N  v1 u1  v2 u2 ..." line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, len(r.Metrics) > 0
}
