// Benchjson converts `go test -bench` output read from stdin into a JSON
// report. Raw lines pass through to stdout unchanged, so it sits at the
// end of a pipe without hiding the human-readable results:
//
//	go test -run '^$' -bench Admit -benchmem ./internal/pricing | \
//	    go run ./cmd/benchjson -out BENCH_admission.json
//
// Every benchmark line becomes {name, iterations, ns_per_op, bytes_per_op,
// allocs_per_op, metrics}: the three standard units are promoted to
// explicit fields (0 when the bench did not report them) so downstream
// tooling never key-matches against "ns/op" strings, and metrics maps
// every reported unit (standard and custom ReportMetric ones) to its
// value, with the -cpucount suffix stripped from the name. Header lines
// (goos, goarch, pkg, cpu) are captured as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// The three standard `go test -bench` units, promoted out of Metrics
	// so regression tooling reads stable JSON keys; zero when the bench
	// did not report the unit (e.g. -benchmem off).
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

type report struct {
	Meta    map[string]string `json:"meta"`
	Results []result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default: stdout after the raw lines)")
	flag.Parse()

	rep := report{Meta: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseBenchLine(line); ok {
			rep.Results = append(rep.Results, r)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			switch k := strings.TrimSuffix(fields[0], ":"); k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Meta[k] = strings.Join(fields[1:], " ")
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkName-8  N  v1 u1  v2 u2 ..." line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, len(r.Metrics) > 0
}
