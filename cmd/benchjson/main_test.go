package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	// A real -benchmem line with a custom ReportMetric unit mixed in.
	line := "BenchmarkSAMSolve/Paper/sparse-8     1   20975531190 ns/op   112403 pivots   52428800 B/op   123456 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatalf("parseBenchLine rejected %q", line)
	}
	if r.Name != "BenchmarkSAMSolve/Paper/sparse" {
		t.Errorf("name = %q, want cpu-count suffix stripped", r.Name)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", r.Iterations)
	}
	if r.NsPerOp != 20975531190 {
		t.Errorf("ns_per_op = %v, want 20975531190", r.NsPerOp)
	}
	if r.BytesPerOp != 52428800 {
		t.Errorf("bytes_per_op = %v, want 52428800", r.BytesPerOp)
	}
	if r.AllocsPerOp != 123456 {
		t.Errorf("allocs_per_op = %v, want 123456", r.AllocsPerOp)
	}
	if r.Metrics["pivots"] != 112403 {
		t.Errorf("metrics[pivots] = %v, want 112403", r.Metrics["pivots"])
	}
	// The promoted units stay in the metrics map too (backwards compat).
	if r.Metrics["ns/op"] != r.NsPerOp {
		t.Errorf("metrics[ns/op] = %v, want %v", r.Metrics["ns/op"], r.NsPerOp)
	}
}

func TestParseBenchLineNoBenchmem(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkQuote-16   948   1264473 ns/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a plain ns/op line")
	}
	if r.NsPerOp != 1264473 {
		t.Errorf("ns_per_op = %v, want 1264473", r.NsPerOp)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("bytes/allocs = %v/%v, want 0/0 when -benchmem is off", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: pretium/internal/sched",
		"ok  \tpretium/internal/sched\t24.9s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
