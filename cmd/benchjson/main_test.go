package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	// A real -benchmem line with a custom ReportMetric unit mixed in.
	line := "BenchmarkSAMSolve/Paper/sparse-8     1   20975531190 ns/op   112403 pivots   52428800 B/op   123456 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatalf("parseBenchLine rejected %q", line)
	}
	if r.Name != "BenchmarkSAMSolve/Paper/sparse" {
		t.Errorf("name = %q, want cpu-count suffix stripped", r.Name)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", r.Iterations)
	}
	if r.NsPerOp != 20975531190 {
		t.Errorf("ns_per_op = %v, want 20975531190", r.NsPerOp)
	}
	if r.BytesPerOp != 52428800 {
		t.Errorf("bytes_per_op = %v, want 52428800", r.BytesPerOp)
	}
	if r.AllocsPerOp != 123456 {
		t.Errorf("allocs_per_op = %v, want 123456", r.AllocsPerOp)
	}
	if r.Metrics["pivots"] != 112403 {
		t.Errorf("metrics[pivots] = %v, want 112403", r.Metrics["pivots"])
	}
	// The promoted units stay in the metrics map too (backwards compat).
	if r.Metrics["ns/op"] != r.NsPerOp {
		t.Errorf("metrics[ns/op] = %v, want %v", r.Metrics["ns/op"], r.NsPerOp)
	}
}

func TestParseBenchLineNoBenchmem(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkQuote-16   948   1264473 ns/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a plain ns/op line")
	}
	if r.NsPerOp != 1264473 {
		t.Errorf("ns_per_op = %v, want 1264473", r.NsPerOp)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("bytes/allocs = %v/%v, want 0/0 when -benchmem is off", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: pretium/internal/sched",
		"ok  \tpretium/internal/sched\t24.9s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}

func TestParseGate(t *testing.T) {
	g, err := parseGate("BenchmarkSAMSolve/Paper/sparse:allocs/op<=364000")
	if err != nil {
		t.Fatalf("parseGate: %v", err)
	}
	if g.bench != "BenchmarkSAMSolve/Paper/sparse" || g.unit != "allocs/op" || g.bound != 364000 || g.floor {
		t.Errorf("gate = %+v", g)
	}
	g, err = parseGate("BenchmarkServiceMixed:ops/sec>=1000000")
	if err != nil {
		t.Fatalf("parseGate floor: %v", err)
	}
	if g.bench != "BenchmarkServiceMixed" || g.unit != "ops/sec" || g.bound != 1000000 || !g.floor {
		t.Errorf("floor gate = %+v", g)
	}
	for _, bad := range []string{"", "nobench", "name:unit", "name<=5", ":unit<=5", "name:<=5", "name:unit<=x", "name:unit>=x", ":unit>=5"} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate accepted %q", bad)
		}
	}
}

func TestGateCheck(t *testing.T) {
	results := []result{{
		Name:    "BenchmarkSAMSolve/Paper/sparse",
		NsPerOp: 14.2e9,
		Metrics: map[string]float64{"pivots": 28854, "allocs/op": 330894, "ns/op": 14.2e9},
	}}
	cases := []struct {
		gate string
		ok   bool
	}{
		{"BenchmarkSAMSolve/Paper/sparse:pivots<=37000", true},
		{"BenchmarkSAMSolve/Paper/sparse:pivots<=28854", true}, // ceiling is inclusive
		{"BenchmarkSAMSolve/Paper/sparse:pivots<=28853", false},
		{"BenchmarkSAMSolve/Paper/sparse:refactors<=100", false}, // unit not reported
		{"BenchmarkGone:pivots<=1e9", false},                     // bench not present
		// Wall-clock ceilings via the promoted field name and the raw unit.
		{"BenchmarkSAMSolve/Paper/sparse:ns_per_op<=45000000000", true},
		{"BenchmarkSAMSolve/Paper/sparse:ns_per_op<=1000000000", false},
		{"BenchmarkSAMSolve/Paper/sparse:ns/op<=45000000000", true},
		// A promoted field the bench never reported (zero) stays a failure:
		// a disarmed wall-clock gate must be loud, not silently green.
		{"BenchmarkSAMSolve/Paper/sparse:bytes_per_op<=1", false},
		// Floors: a throughput-style metric must not fall below the bar.
		{"BenchmarkSAMSolve/Paper/sparse:pivots>=20000", true},
		{"BenchmarkSAMSolve/Paper/sparse:pivots>=28854", true}, // floor is inclusive
		{"BenchmarkSAMSolve/Paper/sparse:pivots>=28855", false},
		{"BenchmarkGone:pivots>=1", false},
		{"BenchmarkSAMSolve/Paper/sparse:refactors>=1", false},
	}
	for _, c := range cases {
		g, err := parseGate(c.gate)
		if err != nil {
			t.Fatalf("parseGate(%q): %v", c.gate, err)
		}
		if got := g.check(results) == nil; got != c.ok {
			t.Errorf("gate %q: pass = %v, want %v", c.gate, got, c.ok)
		}
	}
}
