// Command experiments regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the series/rows the paper
// plots; EXPERIMENTS.md records paper-vs-measured values.
//
// Experiments run concurrently (bounded by exp.Workers) when more than
// one is requested; each experiment renders into its own buffer and the
// buffers are printed in the requested order, so the output is identical
// to a sequential run.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig6 [-scale small|default] [-seed N]
//	experiments -exp all
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pretium/internal/exp"
	"pretium/internal/lp"
	"pretium/internal/obs"
)

// runCtx carries one experiment invocation's output sink, so concurrent
// experiments never interleave writes to stdout.
type runCtx struct {
	out  io.Writer
	plot bool
}

var experiments = map[string]func(rc *runCtx, sc exp.Scale, seed int64) error{
	"fig1": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rc.printRows("Figure 1: CDF of 90th/10th percentile link-utilization ratio", exp.Figure1(sc, seed))
		return nil
	},
	"fig2": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rc.printRows("Figure 2: four-node worked example (optimal welfare = 34)", exp.Figure2())
		return nil
	},
	"fig4": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rc.printRows("Figure 4: price menus under two deadlines", exp.Figure4())
		return nil
	},
	"fig5": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rc.printRows("Figure 5: top-10% mean (z_e) vs 95th percentile (y_e) correlation", exp.Figure5(sc, seed))
		return nil
	},
	"fig6": func(rc *runCtx, sc exp.Scale, seed int64) error {
		sweep, err := exp.LoadSweep(sc, loadFactors(), exp.AllSchemes(), seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 6: welfare relative to OPT vs load factor", exp.Figure6(sweep))
		rc.printRows("Figure 8: profit relative to |RegionOracle| vs load factor", exp.Figure8(sweep))
		rc.printRows("Figure 9: request completion fraction vs load factor", exp.Figure9(sweep))
		return nil
	},
	"fig7": func(rc *runCtx, sc exp.Scale, seed int64) error {
		a, b, c, err := exp.Figure7(sc, seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 7a: price vs utilization over time (busiest priced link, load 2)", a)
		rc.printRows("Figure 7b: value achieved rel. OPT by value-per-byte bucket", b)
		rc.printRows("Figure 7c: admission price vs request value (sampled)", c)
		return nil
	},
	"fig10": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.Figure10(sc, []string{exp.SchemeRegionOracle, exp.SchemeVCGLike, exp.SchemePretium}, seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 10: quantiles of per-link 90th-pct utilization, by scheme (load 1)", rows)
		return nil
	},
	"fig11": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.Figure11(sc, loadFactors(), seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 11: ablations — welfare rel. OPT (full vs NoMenu vs NoSAM)", rows)
		return nil
	},
	"fig12": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.Figure12(sc, []float64{0.5, 1, 1.5, 2, 3}, seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 12: welfare rel. OPT vs mean link cost (load 1)", rows)
		return nil
	},
	"fig13": func(rc *runCtx, sc exp.Scale, seed int64) error {
		f13, f14, err := exp.Figure13and14(sc, exp.ValueDistCases(), seed)
		if err != nil {
			return err
		}
		rc.printRows("Figure 13: welfare rel. OPT across value distributions (load 1)", f13)
		rc.printRows("Figure 14: Pretium profit rel. |RegionOracle| across value distributions", f14)
		return nil
	},
	"table4": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.Table4(sc, seed)
		if err != nil {
			return err
		}
		rc.printRows("Table 4: module runtimes (our solver, our scale — compare shape, not seconds)", rows)
		return nil
	},
	"incentives": func(rc *runCtx, sc exp.Scale, seed int64) error {
		res, err := exp.Incentives(sc, 10, seed)
		if err != nil {
			return err
		}
		rc.printRows("§5 incentives: single-request deadline misreports", res.Rows())
		return nil
	},
	"convergence": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.Convergence(sc, 6, seed)
		if err != nil {
			return err
		}
		rc.printRows("§4.4 price convergence over statistically identical days", rows)
		return nil
	},
	"chaos": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.ChaosSuite(sc, seed)
		if err != nil {
			return err
		}
		rc.printRows("Chaos gauntlet: welfare loss and degradation under injected faults (load 2)", rows)
		return nil
	},
	"churn": func(rc *runCtx, sc exp.Scale, seed int64) error {
		rows, err := exp.ChurnGauntlet(sc, seed)
		if err != nil {
			return err
		}
		rc.printRows("Churn gauntlet: preemption, refunds, and repair under topology churn (load 2)", rows)
		return nil
	},
}

// order fixes the -exp all execution sequence.
var order = []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11", "fig12", "fig13", "table4", "incentives", "convergence", "chaos", "churn"}

func loadFactors() []float64 { return []float64{0.5, 1, 2, 3} }

func (rc *runCtx) printRows(title string, rows []exp.Row) {
	fmt.Fprintf(rc.out, "\n== %s ==\n", title)
	for _, r := range rows {
		fmt.Fprintln(rc.out, "  "+r.Fmt())
	}
	if !rc.plot || len(rows) == 0 {
		return
	}
	// One bar chart per distinct column name.
	seen := map[string]bool{}
	for _, r := range rows {
		for _, c := range r.Columns {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			if chart := exp.RenderBars(rows, c.Name, 48); chart != "" {
				fmt.Fprintln(rc.out)
				fmt.Fprint(rc.out, chart)
			}
		}
	}
}

func main() {
	var (
		name       = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		scale      = flag.String("scale", "default", "experiment scale: small, default, medium (alias of default), or paper")
		seed       = flag.Int64("seed", 1, "experiment seed")
		list       = flag.Bool("list", false, "list experiments")
		plot       = flag.Bool("plot", false, "render ASCII bar charts under each table")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
		tracePath  = flag.String("trace", "", "write the Pretium controllers' JSONL event trace to this file (run one experiment for a deterministic stream)")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot (counters/gauges/histograms) to this file on exit")
		pricing    = flag.String("pricing", "auto", "simplex pricing rule for every LP solve: auto, dantzig, or devex")
		coldStrat  = flag.String("cold-strategy", "auto", "simplex cold-start strategy for every LP solve: auto, primal, or dual")
	)
	flag.Parse()

	if *tracePath != "" || *metricsOut != "" {
		var tw io.Writer
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			tw = f
		}
		exp.Observe = obs.NewRecorder(tw)
		if *metricsOut != "" {
			defer func() {
				f, err := os.Create(*metricsOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
					return
				}
				defer f.Close()
				if err := exp.Observe.Metrics().WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
				}
			}()
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list || *name == "" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("experiments:", strings.Join(names, " "), "| all")
		return
	}
	var sc exp.Scale
	switch *scale {
	case "small":
		sc = exp.Small()
	case "default":
		sc = exp.Default()
	case "medium":
		sc = exp.Medium()
	case "paper":
		sc = exp.Paper()
		fmt.Fprintln(os.Stderr, "warning: paper scale builds very large LPs; expect hours per experiment")
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	// Solver overrides apply to every LP the experiments build (SAM, PC,
	// oracle baselines alike); invalid values are rejected here rather
	// than surfacing mid-experiment as a failed Solve.
	switch *pricing {
	case "auto", "dantzig", "devex":
		sc.Solver.Pricing = lp.PricingRule(*pricing)
	default:
		fmt.Fprintf(os.Stderr, "unknown pricing rule %q (want auto, dantzig, or devex)\n", *pricing)
		os.Exit(2)
	}
	switch *coldStrat {
	case "auto", "primal", "dual":
		sc.Solver.ColdStrategy = lp.ColdStrategy(*coldStrat)
	default:
		fmt.Fprintf(os.Stderr, "unknown cold-start strategy %q (want auto, primal, or dual)\n", *coldStrat)
		os.Exit(2)
	}

	var names []string
	if *name == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*name, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	for _, n := range names {
		if _, ok := experiments[n]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
	}

	// Fan the experiments out across the worker pool, buffering each
	// one's output, then flush the buffers in request order: the printed
	// output matches a sequential run byte for byte (aside from the
	// wall-clock stamps, which reflect the concurrent schedule).
	bufs := make([]bytes.Buffer, len(names))
	durs := make([]time.Duration, len(names))
	err := exp.ParallelFor(len(names), func(i int) error {
		start := time.Now()
		rc := &runCtx{out: &bufs[i], plot: *plot}
		if err := experiments[names[i]](rc, sc, *seed); err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		durs[i] = time.Since(start)
		return nil
	})
	for i := range bufs {
		os.Stdout.Write(bufs[i].Bytes())
		if durs[i] > 0 {
			fmt.Printf("  [%s done in %.1fs]\n", names[i], durs[i].Seconds())
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
