// Command tracegen generates and summarizes a synthetic inter-DC traffic
// trace — the stand-in for the production WAN trace the paper replays —
// and optionally emits the per-link utilization series as CSV for
// external analysis.
//
// Usage:
//
//	tracegen -days 7 -summary
//	tracegen -days 1 -csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pretium/internal/graph"
	"pretium/internal/stats"
	"pretium/internal/traffic"
)

func main() {
	var (
		days    = flag.Int("days", 7, "days of traffic to generate")
		perDay  = flag.Int("stepsperday", 24, "timesteps per day")
		regions = flag.Int("regions", 3, "WAN regions")
		nodes   = flag.Int("nodes", 4, "datacenters per region")
		seed    = flag.Int64("seed", 7, "generator seed")
		csv     = flag.Bool("csv", false, "emit per-link utilization series as CSV to stdout")
		matrix  = flag.Bool("matrix", false, "emit the traffic-matrix series as CSV to stdout (replayable via pretium-sim -trace)")
		topoOut = flag.String("topology", "", "also write the generated topology as CSV to this file (replayable via pretium-sim -topology)")
		summary = flag.Bool("summary", true, "print trace summary statistics")
	)
	flag.Parse()

	wc := graph.DefaultWANConfig()
	wc.Regions, wc.NodesPerRegion, wc.Seed = *regions, *nodes, *seed
	net := graph.GenerateWAN(wc)

	gc := traffic.DefaultGenConfig(*days * *perDay)
	gc.StepsPerDay = *perDay
	gc.Seed = *seed + 1
	series := traffic.Generate(net, gc)
	usage := traffic.LinkUtilization(net, series)

	if *topoOut != "" {
		f, err := os.Create(*topoOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := net.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *matrix {
		if err := traffic.WriteSeriesCSV(os.Stdout, series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *csv {
		fmt.Println("edge,from,to,step,load")
		for _, e := range net.Edges() {
			for t, u := range usage[e.ID] {
				fmt.Printf("%d,%s,%s,%d,%.4f\n", e.ID, net.Node(e.From).Name, net.Node(e.To).Name, t, u)
			}
		}
		return
	}
	if !*summary {
		return
	}

	total := 0.0
	for _, m := range series {
		total += m.Total()
	}
	fmt.Printf("trace: %d steps (%d days), %d nodes, %d edges, total volume %.0f\n",
		len(series), *days, net.NumNodes(), net.NumEdges(), total)

	var ratios []float64
	over5, under2 := 0, 0
	for _, s := range usage {
		p90, err1 := stats.Percentile(s, 90)
		p10, err2 := stats.Percentile(s, 10)
		if err1 != nil || err2 != nil || p10 <= 0 {
			continue
		}
		r := p90 / p10
		ratios = append(ratios, r)
		if r > 5 {
			over5++
		}
		if r < 2 {
			under2++
		}
	}
	if len(ratios) == 0 {
		fmt.Fprintln(os.Stderr, "no utilized links")
		os.Exit(1)
	}
	fmt.Printf("per-link 90th/10th utilization ratio (paper Figure 1 statistic):\n")
	fmt.Printf("  > 5 for %d%% of links (paper: >10%%)\n", 100*over5/len(ratios))
	fmt.Printf("  < 2 for %d%% of links (paper: ~70%%)\n", 100*under2/len(ratios))
	med, _ := stats.Percentile(ratios, 50)
	fmt.Printf("  median ratio %.2f\n", med)

	// Per-link z_e vs y_e (Figure 5 inputs).
	var zs, ys []float64
	for _, s := range usage {
		if stats.Mean(s) == 0 {
			continue
		}
		k := len(s) / 10
		if k < 1 {
			k = 1
		}
		z, _ := stats.TopKMean(s, k)
		y, _ := stats.Percentile(s, 95)
		zs = append(zs, z)
		ys = append(ys, y)
	}
	if lr, err := stats.LinearRegression(ys, zs); err == nil {
		fmt.Printf("top-10%% mean vs 95th percentile: slope %.3f, R² %.3f over %d links\n",
			lr.Slope, lr.R2, len(zs))
	}
}
