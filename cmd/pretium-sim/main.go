// Command pretium-sim runs one scheme (Pretium or a baseline) over a
// synthetic workload and prints its economics — a one-shot driver for
// exploring configurations outside the canned experiments.
//
// Usage:
//
//	pretium-sim -scheme Pretium -load 2 -seed 7
//	pretium-sim -scheme OPT -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pretium/internal/exp"
	"pretium/internal/graph"
	"pretium/internal/traffic"
)

func main() {
	var (
		scheme   = flag.String("scheme", exp.SchemePretium, "scheme: "+strings.Join(append(exp.AllSchemes(), exp.SchemeNoMenu, exp.SchemeNoSAM, exp.SchemeOnlineTE), ", "))
		scale    = flag.String("scale", "default", "experiment scale: small or default")
		load     = flag.Float64("load", 1, "traffic load factor")
		seed     = flag.Int64("seed", 1, "workload seed")
		rate     = flag.Float64("ratefrac", 0, "fraction of requests issued as rate requests")
		topoFile = flag.String("topology", "", "load the WAN from a topology CSV (see graph.WriteCSV) instead of generating one")
		trace    = flag.String("trace", "", "replay a recorded traffic-matrix CSV (see traffic.WriteSeriesCSV) instead of generating traffic")
	)
	flag.Parse()

	var sc exp.Scale
	switch *scale {
	case "small":
		sc = exp.Small()
	case "default":
		sc = exp.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	s := exp.NewSetup(sc, exp.WithLoad(*load), exp.WithSeed(*seed), exp.WithRateFraction(*rate))
	if *topoFile != "" || *trace != "" {
		var err error
		s, err = setupFromFiles(s, sc, *topoFile, *trace, *load, *seed, *rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("setup: %d nodes, %d edges (%d usage-priced), %d steps, %d requests, load %.2g\n",
		s.Net.NumNodes(), s.Net.NumEdges(), len(s.Net.UsagePricedEdges()), sc.Steps, len(s.Requests), *load)

	start := time.Now()
	res, err := s.RunScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	r := res.Report
	fmt.Printf("\n%s in %.2fs\n", res.Name, elapsed.Seconds())
	fmt.Printf("  welfare:    %10.1f  (value %.1f − exact 95th-pct cost %.1f)\n", r.Welfare, r.Value, r.Cost)
	fmt.Printf("  profit:     %10.1f  (revenue %.1f)\n", r.Profit, r.Revenue)
	fmt.Printf("  completion: %9.1f%%  (%d of %d requests)\n", r.CompletionFrac*100, r.Completed, len(s.Requests))
	fmt.Printf("  reneged:    %10.2f bytes\n", r.RenegedBytes)
	if res.Controller != nil {
		tm := res.Controller.Timings
		fmt.Printf("  module runs: RA=%d SAM=%d PC=%d\n", len(tm.RA), len(tm.SAM), len(tm.PC))
	}
}

// setupFromFiles rebuilds the experiment setup from a topology CSV and/or
// a recorded trace CSV: the trace replaces the synthetic traffic matrix,
// and requests are re-synthesized from it with the scale's parameters.
func setupFromFiles(base *exp.Setup, sc exp.Scale, topoPath, tracePath string, load float64, seed int64, rateFrac float64) (*exp.Setup, error) {
	net := base.Net
	if topoPath != "" {
		f, err := os.Open(topoPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, err = graph.ReadCSV(f)
		if err != nil {
			return nil, err
		}
	}
	series := base.Series
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		series, err = traffic.ReadSeriesCSV(f)
		if err != nil {
			return nil, err
		}
		if load != 1 {
			series.Scale(load)
		}
	} else if topoPath != "" {
		// A custom topology invalidates the pre-generated series (node
		// counts may differ): regenerate on the new network.
		gc := traffic.DefaultGenConfig(sc.Steps)
		gc.StepsPerDay = sc.StepsPerDay
		gc.Seed = seed + 100
		series = traffic.Generate(net, gc)
		if load != 1 {
			series.Scale(load)
		}
	}
	if len(series) > 0 && len(series[0].Demand) != net.NumNodes() {
		return nil, fmt.Errorf("trace covers %d nodes, topology has %d", len(series[0].Demand), net.NumNodes())
	}
	rc := traffic.DefaultRequestConfig()
	rc.MeanSize = sc.MeanRequestSize * load
	rc.ValueDist = base.ValueDist
	rc.RoutesPerRequest = sc.RoutesPerRequest
	rc.MaxSlack = sc.StepsPerDay / 2
	rc.RateFraction = rateFrac
	rc.AggregateSteps = sc.AggregateSteps
	rc.Seed = seed + 200
	reqs := traffic.Synthesize(net, series, rc)
	out := *base
	out.Net = net
	out.Series = series
	out.Requests = reqs
	out.Scale.Steps = len(series)
	return &out, nil
}
