// Command pretium-serve runs the concurrent admission service as a
// long-lived HTTP front-end: the RA module of the paper turned into a
// server (ROADMAP item 1). It builds a synthetic WAN at the chosen
// experiment scale, wraps it in the sharded internal/serve service, and
// exposes the thin JSON API:
//
//	POST /v1/quote   — price a transfer without admitting it
//	POST /v1/admit   — binding admission (menu, Theorem 5.2 purchase, commit)
//	POST /v1/publish — install the next pricing epoch (SAM/PC's job)
//	GET  /v1/state   — epoch and topology summary
//	GET  /metrics    — obs registry snapshot
//
// Usage:
//
//	pretium-serve -addr :8080 -scale small -shards 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"pretium/internal/exp"
	"pretium/internal/obs"
	"pretium/internal/pricing"
	"pretium/internal/serve"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		scale  = flag.String("scale", "small", "experiment scale: small, default, medium, or paper")
		shards = flag.Int("shards", 8, "admission shards over (src-region, dst-region) classes")
		price  = flag.Float64("price", 1.0, "initial uniform base price")
		seed   = flag.Int64("seed", 1, "topology seed")
	)
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	setup := exp.NewSetup(sc, exp.WithSeed(*seed))
	m := obs.NewMetrics()
	svc, err := serve.New(pricing.NewState(setup.Net, sc.Steps, *price), serve.Config{Shards: *shards, Obs: m})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("pretium-serve: %d nodes, %d edges, horizon %d, %d shards; listening on %s",
		setup.Net.NumNodes(), setup.Net.NumEdges(), sc.Steps, svc.NumShards(), *addr)
	if err := http.ListenAndServe(*addr, serve.Handler(svc, m)); err != nil {
		log.Fatal(err)
	}
}

func scaleByName(name string) (exp.Scale, error) {
	switch name {
	case "small":
		return exp.Small(), nil
	case "default":
		return exp.Default(), nil
	case "medium":
		return exp.Medium(), nil
	case "paper":
		return exp.Paper(), nil
	}
	return exp.Scale{}, fmt.Errorf("unknown scale %q (want small, default, medium, or paper)", name)
}
