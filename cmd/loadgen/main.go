// Command loadgen is the closed-loop load generator for the admission
// service: N workers drive a mixed quote/admit workload against an
// in-process serve.Service (the same code path cmd/pretium-serve puts
// behind HTTP, minus the transport) while a publisher goroutine swaps
// pricing epochs at a fixed cadence. It reports sustained ops/sec and a
// latency histogram through the internal/obs registry, and ends with a
// `go test -bench`-shaped line so the Makefile can pipe the run through
// cmd/benchjson and gate the throughput floor:
//
//	loadgen -duration 5s -workers 4 -shards 8 | \
//	    go run ./cmd/benchjson -gate 'BenchmarkLoadgen/closed_loop:ops/sec>=1000000'
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pretium/internal/exp"
	"pretium/internal/obs"
	"pretium/internal/pricing"
	"pretium/internal/serve"
	"pretium/internal/traffic"
)

func main() {
	var (
		scale        = flag.String("scale", "small", "experiment scale: small, default, medium, or paper")
		seed         = flag.Int64("seed", 1, "topology and request-stream seed")
		shards       = flag.Int("shards", 8, "admission shards")
		workers      = flag.Int("workers", 4, "concurrent closed-loop workers")
		duration     = flag.Duration("duration", 3*time.Second, "run length")
		admitFrac    = flag.Float64("admit-frac", 0.1, "fraction of ops that are binding admits (rest are quotes)")
		publishEvery = flag.Duration("publish-every", 100*time.Millisecond, "epoch publish cadence (0 disables)")
		// The synthesized value distribution has mean ~0.35/byte, so the
		// default price sits below it and a healthy share of admits accept
		// (price 1.0 would decline everything and never exercise commits).
		price = flag.Float64("price", 0.2, "initial uniform base price")
		out   = flag.String("out", "", "write the obs metrics snapshot to this file")
	)
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	setup := exp.NewSetup(sc, exp.WithSeed(*seed))
	var reqs []*traffic.Request
	for _, r := range setup.Requests {
		if r.Kind == traffic.ByteRequest {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) == 0 {
		log.Fatal("loadgen: setup synthesized no byte requests")
	}

	m := obs.NewMetrics()
	svc, err := serve.New(pricing.NewState(setup.Net, sc.Steps, *price), serve.Config{Shards: *shards, Obs: m})
	if err != nil {
		log.Fatal(err)
	}

	// Resolve every handle up front so the hot loop never touches the
	// registry lock. Latency edges are powers of two from 128ns to ~8ms.
	ops := m.Counter("loadgen.ops")
	var edges []float64
	for ns := 128.0; ns <= 8.5e6; ns *= 2 {
		edges = append(edges, ns)
	}
	lat := m.Histogram("loadgen.latency_ns", edges)

	// admitEvery turns the admit fraction into a deterministic per-worker
	// cycle: one admit per admitEvery ops.
	admitEvery := 1 << 62
	if *admitFrac > 0 {
		admitEvery = int(math.Round(1 / *admitFrac))
		if admitEvery < 1 {
			admitEvery = 1
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	if *publishEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*publishEvery)
			defer tick.Stop()
			for !stop.Load() {
				<-tick.C
				if err := svc.Publish(nil, false); err != nil {
					log.Fatalf("loadgen: publish: %v", err)
				}
			}
		}()
	}

	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			// Stagger workers across the stream so shards see a mix.
			i := w * len(reqs) / max(*workers, 1)
			for !stop.Load() {
				req := reqs[i]
				i++
				if i == len(reqs) {
					i = 0
				}
				n++
				// Sampling 1-in-8 keeps the clock calls off the hot path
				// while the histogram still sees thousands of points/sec.
				sample := n&7 == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if n%int64(admitEvery) == 0 {
					svc.Admit(req)
				} else {
					svc.Quote(req, req.Demand)
				}
				if sample {
					lat.Observe(float64(time.Since(t0).Nanoseconds()))
				}
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	total := ops.Value()
	opsPerSec := float64(total) / elapsed.Seconds()
	m.Gauge("loadgen.ops_per_sec").Set(opsPerSec)

	fmt.Fprintf(os.Stderr, "loadgen: %s scale, %d workers, %d shards, %v\n", sc.Name, *workers, svc.NumShards(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "  ops        %d (%.0f ops/sec)\n", total, opsPerSec)
	fmt.Fprintf(os.Stderr, "  quotes     %d\n", m.Counter("serve.quotes").Value())
	fmt.Fprintf(os.Stderr, "  admits     %d accepted, %d declined\n", m.Counter("serve.admits").Value(), m.Counter("serve.declines").Value())
	fmt.Fprintf(os.Stderr, "  publishes  %d (epoch %d)\n", m.Counter("serve.publishes").Value(), svc.Epoch())
	if lat.Count() > 0 {
		fmt.Fprintf(os.Stderr, "  latency    mean %s  p50 %s  p95 %s  p99 %s  (sampled 1/8)\n",
			fmtNs(lat.Sum()/float64(lat.Count())), fmtNs(lat.Quantile(0.5)), fmtNs(lat.Quantile(0.95)), fmtNs(lat.Quantile(0.99)))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// The bench-format line benchjson parses: iterations, ns/op, and the
	// ops/sec rate a `>=` gate can put a floor under.
	fmt.Printf("BenchmarkLoadgen/closed_loop %d %.1f ns/op %.0f ops/sec\n",
		total, float64(elapsed.Nanoseconds())/float64(max(total, 1)), opsPerSec)
}

// fmtNs renders a nanosecond quantity from the histogram; the overflow
// bucket's +Inf prints as beyond the largest edge.
func fmtNs(ns float64) string {
	if math.IsInf(ns, 1) {
		return ">8.4ms"
	}
	return time.Duration(int64(ns)).String()
}

func scaleByName(name string) (exp.Scale, error) {
	switch name {
	case "small":
		return exp.Small(), nil
	case "default":
		return exp.Default(), nil
	case "medium":
		return exp.Medium(), nil
	case "paper":
		return exp.Paper(), nil
	}
	return exp.Scale{}, fmt.Errorf("unknown scale %q (want small, default, medium, or paper)", name)
}
